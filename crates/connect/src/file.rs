//! File connectors: CSV and JSON-lines sources and sinks.
//!
//! Sources are **schema-driven**: the caller supplies the stream's schema
//! and each line parses into a typed [`Row`] (see [`crate::text`] /
//! [`crate::json`]). Event rows replay with their event-time column as the
//! processing time, and every batch carries a bounded-out-of-orderness
//! watermark (`max event time seen − lateness`), so downstream
//! `EMIT AFTER WATERMARK` queries make progress while the file streams in.
//!
//! Sinks render the query's output either as a faithful changelog (data
//! columns plus `undo` / `ptime` / `ver`) or, for final-only streams, as
//! plain appended records that a source with the same schema reads back.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Lines, Write};
use std::path::Path;

use onesql_core::connect::{
    ColumnarBatch, PartitionedSource, PartitionedVec, Sink, Source, SourceBatch, SourceEvent,
    SourceStatus,
};
use onesql_exec::StreamRow;
use onesql_tvr::{Change, ChangeBatch};
use onesql_types::{ColumnBuilder, Duration, Error, Result, Row, Schema, SchemaRef, Ts, Value};

use crate::json;
use crate::text;

/// Tuning for file sources.
#[derive(Debug, Clone)]
pub struct FileSourceConfig {
    /// Watermark bound: the per-batch watermark is the max event time seen
    /// minus this. Zero asserts in-order files.
    pub lateness: Duration,
    /// CSV only: skip the first line (a header).
    pub has_header: bool,
}

impl Default for FileSourceConfig {
    fn default() -> FileSourceConfig {
        FileSourceConfig {
            lateness: Duration::ZERO,
            has_header: false,
        }
    }
}

/// Line format of a text file source.
#[derive(Clone, Copy)]
enum LineFormat {
    Csv,
    JsonLines,
}

/// Shared machinery of the two text-file sources.
struct TextFileSource {
    name: String,
    streams: Vec<String>,
    schema: SchemaRef,
    lines: Lines<BufReader<File>>,
    format: LineFormat,
    config: FileSourceConfig,
    /// First event-time column, if the schema has one.
    et_col: Option<usize>,
    /// Synthetic processing-time counter for schemas without event time.
    seq: i64,
    /// Max event time seen (drives the watermark).
    max_ts: Option<Ts>,
    /// Lines consumed so far (for error messages).
    line_no: u64,
    done: bool,
}

impl TextFileSource {
    fn open(
        path: impl AsRef<Path>,
        stream: impl Into<String>,
        schema: SchemaRef,
        format: LineFormat,
        config: FileSourceConfig,
    ) -> Result<TextFileSource> {
        let path = path.as_ref();
        let file = File::open(path)
            .map_err(|e| Error::exec(format!("cannot open '{}': {e}", path.display())))?;
        let et_col = schema.event_time_columns().first().copied();
        let mut source = TextFileSource {
            name: format!("file:{}", path.display()),
            streams: vec![stream.into()],
            schema,
            lines: BufReader::new(file).lines(),
            format,
            config,
            et_col,
            seq: 0,
            max_ts: None,
            line_no: 0,
            done: false,
        };
        // `has_header` is CSV-only (JSON-lines has no header concept; a
        // config struct reused from a CSV source must not eat a record).
        if source.config.has_header && matches!(source.format, LineFormat::Csv) {
            source.line_no += 1;
            let _ = source.lines.next();
        }
        Ok(source)
    }

    fn parse_line(&self, line: &str) -> Result<Row> {
        match self.format {
            LineFormat::Csv => text::parse_record(&text::split_csv_line(line), &self.schema),
            LineFormat::JsonLines => json::json_to_row(line, &self.schema),
        }
        .map_err(|e| Error::exec(format!("{}: line {}: {e}", self.name, self.line_no)))
    }

    /// Read the next complete record line: skips blanks and joins quoted
    /// multi-line CSV records. `None` marks end of file (and sets `done`).
    fn next_record_line(&mut self) -> Result<Option<String>> {
        loop {
            let Some(line) = self.lines.next() else {
                self.done = true;
                return Ok(None);
            };
            let mut line =
                line.map_err(|e| Error::exec(format!("{}: read error: {e}", self.name)))?;
            self.line_no += 1;
            if line.trim().is_empty() {
                continue;
            }
            // A quoted CSV field may legally contain newlines; keep
            // consuming physical lines until the quotes balance.
            if matches!(self.format, LineFormat::Csv) {
                while !text::csv_quotes_balanced(&line) {
                    let next = self.lines.next().ok_or_else(|| {
                        Error::exec(format!(
                            "{}: line {}: unterminated quoted field at end of file",
                            self.name, self.line_no
                        ))
                    })?;
                    let next =
                        next.map_err(|e| Error::exec(format!("{}: read error: {e}", self.name)))?;
                    self.line_no += 1;
                    line.push('\n');
                    line.push_str(&next);
                }
            }
            return Ok(Some(line));
        }
    }

    fn poll(&mut self, max_events: usize) -> Result<SourceBatch> {
        if self.done {
            return Ok(SourceBatch::empty(SourceStatus::Finished));
        }
        let mut batch = SourceBatch::empty(SourceStatus::Ready);
        while batch.events.len() < max_events {
            let Some(line) = self.next_record_line()? else {
                batch.status = SourceStatus::Finished;
                break;
            };
            let row = self.parse_line(&line)?;
            // Replay semantics: event time doubles as arrival time (the
            // driver keeps the global clock monotone for late rows).
            let ptime = match self.et_col {
                Some(col) => match row.value(col)? {
                    Value::Ts(t) => *t,
                    other => {
                        return Err(Error::exec(format!(
                            "{}: line {}: event-time column holds {other:?}",
                            self.name, self.line_no
                        )))
                    }
                },
                None => {
                    self.seq += 1;
                    Ts(self.seq - 1)
                }
            };
            self.max_ts = Some(self.max_ts.map_or(ptime, |m| m.max(ptime)));
            batch.events.push(SourceEvent {
                stream: 0,
                ptime,
                change: Change::insert(row),
            });
        }
        if let Some(max) = self.max_ts {
            // Trail the max by 1ms beyond the lateness bound: a watermark
            // asserts future events are *strictly* later, and files may
            // hold several rows at one timestamp (cf. AscendingWatermarks).
            batch.watermark = Some(max - self.config.lateness - Duration(1));
        }
        Ok(batch)
    }

    /// Chunked columnar poll (CSV only): parse up to `max_events` records
    /// field-by-field into per-column [`ColumnBuilder`]s — numeric and
    /// timestamp fields go straight to unboxed storage, and no
    /// intermediate [`Row`] is ever built — then hand the driver a ready
    /// [`ChangeBatch`] of inserts.
    ///
    /// Behavior mirrors [`TextFileSource::poll`] exactly: the same error
    /// messages at the same lines, the same watermark rule, the same
    /// finish condition. The ptime lane is the event times clamped to a
    /// running max (the driver's per-event monotone-clock clamp, applied
    /// while building).
    fn poll_cols(&mut self, max_events: usize) -> Result<Option<ColumnarBatch>> {
        if !matches!(self.format, LineFormat::Csv) {
            return Ok(None);
        }
        let arity = self.schema.arity();
        if self.done {
            return Ok(Some(ColumnarBatch {
                stream: 0,
                columns: ChangeBatch::new_dense(
                    (0..arity)
                        .map(|_| ColumnBuilder::with_capacity(0).finish())
                        .collect(),
                    Vec::new(),
                    Vec::new(),
                ),
                watermark: None,
                status: SourceStatus::Finished,
            }));
        }
        let mut builders: Vec<ColumnBuilder> = (0..arity)
            .map(|_| ColumnBuilder::with_capacity(max_events))
            .collect();
        let mut ptimes: Vec<Ts> = Vec::with_capacity(max_events);
        let mut status = SourceStatus::Ready;
        while ptimes.len() < max_events {
            let Some(line) = self.next_record_line()? else {
                status = SourceStatus::Finished;
                break;
            };
            let fields = text::split_csv_line(&line);
            if fields.len() != arity {
                // parse_record's arity error, with the line context
                // `parse_line` would attach. The Ok branch cannot fire —
                // the arity check above guarantees a mismatch — but a
                // synthesized message beats panicking.
                let err = match text::parse_record(&fields, &self.schema) {
                    Err(e) => e,
                    Ok(_) => Error::exec(format!("expected {arity} fields, got {}", fields.len())),
                };
                return Err(Error::exec(format!(
                    "{}: line {}: {err}",
                    self.name, self.line_no
                )));
            }
            let mut et_ts = None;
            for (col, (field, b)) in self.schema.fields().iter().zip(&mut builders).enumerate() {
                let parsed =
                    text::parse_field_into(&fields[col], field.data_type, b).map_err(|e| {
                        Error::exec(format!("{}: line {}: {e}", self.name, self.line_no))
                    })?;
                if Some(col) == self.et_col {
                    et_ts = parsed;
                }
            }
            let raw = match self.et_col {
                Some(col) => match et_ts {
                    Some(t) => t,
                    None => {
                        // The event-time field parsed, but not as a
                        // timestamp; re-parse it once for the exact value
                        // the row path's error would print.
                        let dt = self.schema.fields()[col].data_type;
                        let held = match text::parse_value(&fields[col], dt) {
                            Ok(other) => format!("{other:?}"),
                            Err(_) => format!("unparseable '{}'", fields[col]),
                        };
                        return Err(Error::exec(format!(
                            "{}: line {}: event-time column holds {held}",
                            self.name, self.line_no
                        )));
                    }
                },
                None => {
                    self.seq += 1;
                    Ts(self.seq - 1)
                }
            };
            self.max_ts = Some(self.max_ts.map_or(raw, |m| m.max(raw)));
            ptimes.push(ptimes.last().map_or(raw, |&p| p.max(raw)));
        }
        let diffs = vec![1i64; ptimes.len()];
        let cols = builders.into_iter().map(ColumnBuilder::finish).collect();
        Ok(Some(ColumnarBatch {
            stream: 0,
            columns: ChangeBatch::new_dense(cols, diffs, ptimes),
            watermark: self
                .max_ts
                .map(|max| max - self.config.lateness - Duration(1)),
            status,
        }))
    }
}

// A single file partition is itself a well-formed source, which is what
// lets `PartitionedVec` fold N of them into the partitioned connector.
impl Source for TextFileSource {
    fn name(&self) -> &str {
        &self.name
    }
    fn streams(&self) -> &[String] {
        &self.streams
    }
    fn poll_batch(&mut self, max_events: usize) -> Result<SourceBatch> {
        self.poll(max_events)
    }
    fn poll_columns(&mut self, max_events: usize) -> Result<Option<ColumnarBatch>> {
        self.poll_cols(max_events)
    }
}

/// Reads a CSV file as a stream of inserts.
pub struct CsvFileSource(TextFileSource);

impl CsvFileSource {
    /// Open `path`, parsing each line against `schema` and feeding engine
    /// stream `stream`.
    pub fn new(
        path: impl AsRef<Path>,
        stream: impl Into<String>,
        schema: SchemaRef,
        config: FileSourceConfig,
    ) -> Result<CsvFileSource> {
        Ok(CsvFileSource(TextFileSource::open(
            path,
            stream,
            schema,
            LineFormat::Csv,
            config,
        )?))
    }
}

impl Source for CsvFileSource {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn streams(&self) -> &[String] {
        &self.0.streams
    }
    fn poll_batch(&mut self, max_events: usize) -> Result<SourceBatch> {
        self.0.poll(max_events)
    }
    fn poll_columns(&mut self, max_events: usize) -> Result<Option<ColumnarBatch>> {
        self.0.poll_cols(max_events)
    }
}

/// Reads a JSON-lines file as a stream of inserts.
pub struct JsonLinesSource(TextFileSource);

impl JsonLinesSource {
    /// Open `path`, parsing each line as a JSON object against `schema`.
    pub fn new(
        path: impl AsRef<Path>,
        stream: impl Into<String>,
        schema: SchemaRef,
        config: FileSourceConfig,
    ) -> Result<JsonLinesSource> {
        Ok(JsonLinesSource(TextFileSource::open(
            path,
            stream,
            schema,
            LineFormat::JsonLines,
            config,
        )?))
    }
}

impl Source for JsonLinesSource {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn streams(&self) -> &[String] {
        &self.0.streams
    }
    fn poll_batch(&mut self, max_events: usize) -> Result<SourceBatch> {
        self.0.poll(max_events)
    }
}

/// A partitioned file source: N files feeding one stream, one partition
/// per file — the on-disk analog of a partitioned Kafka topic.
///
/// Each partition replays its file independently (its own watermark from
/// its own max event time, its own replayable offset counting parsed
/// records), so the sharded driver can poll them round-robin, combine
/// their watermarks as the min, and seek any partition back to a
/// checkpointed offset by re-reading its file. The `Vec<inner>` + offset
/// plumbing is [`PartitionedVec`]; this type only opens the files.
pub struct PartitionedFileSource(PartitionedVec<TextFileSource>);

impl PartitionedFileSource {
    fn open_all(
        paths: &[impl AsRef<Path>],
        stream: &str,
        schema: SchemaRef,
        format: LineFormat,
        config: FileSourceConfig,
    ) -> Result<PartitionedFileSource> {
        if paths.is_empty() {
            return Err(Error::plan(
                "partitioned file source needs at least one file",
            ));
        }
        let parts = paths
            .iter()
            .map(|p| TextFileSource::open(p, stream, schema.clone(), format, config.clone()))
            .collect::<Result<Vec<_>>>()?;
        Ok(PartitionedFileSource(PartitionedVec::new(
            format!("files:{}x{}", paths[0].as_ref().display(), paths.len()),
            parts,
        )?))
    }

    /// One partition per CSV file, all parsed against `schema` into
    /// engine stream `stream`.
    pub fn csv(
        paths: &[impl AsRef<Path>],
        stream: &str,
        schema: SchemaRef,
        config: FileSourceConfig,
    ) -> Result<PartitionedFileSource> {
        PartitionedFileSource::open_all(paths, stream, schema, LineFormat::Csv, config)
    }

    /// One partition per JSON-lines file.
    pub fn json_lines(
        paths: &[impl AsRef<Path>],
        stream: &str,
        schema: SchemaRef,
        config: FileSourceConfig,
    ) -> Result<PartitionedFileSource> {
        PartitionedFileSource::open_all(paths, stream, schema, LineFormat::JsonLines, config)
    }
}

impl PartitionedSource for PartitionedFileSource {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn streams(&self) -> &[String] {
        self.0.streams()
    }

    fn partitions(&self) -> usize {
        self.0.partitions()
    }

    fn poll_partition(&mut self, partition: usize, max_events: usize) -> Result<SourceBatch> {
        self.0.poll_partition(partition, max_events)
    }

    fn offset(&self, partition: usize) -> u64 {
        self.0.offset(partition)
    }

    fn seek(&mut self, partition: usize, offset: u64) -> Result<()> {
        self.0.seek(partition, offset)
    }
}

/// What a file sink writes per output row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsvSinkMode {
    /// Data columns plus `undo` / `ptime` / `ver` metadata: a faithful
    /// changelog any consumer can replay.
    Changelog,
    /// Data columns only. Valid for append-only outputs (e.g.
    /// `EMIT AFTER WATERMARK` aggregates); a retraction is an error.
    Appends,
}

/// Names of the metadata columns a changelog-mode sink appends.
const META_NAMES: [&str; 3] = onesql_exec::STREAM_META_COLUMNS;

/// Row-to-line rendering shared by the plain and transactional file
/// sinks: CSV or JSON-lines, changelog or appends mode, with the
/// bind-time header line and extended JSON schema.
struct LineRenderer {
    name: String,
    mode: CsvSinkMode,
    format: LineFormat,
    /// JSON field-name schema, extended with the metadata columns in
    /// changelog mode; built once at bind time.
    json_schema: Option<Schema>,
    header: bool,
}

impl LineRenderer {
    fn new(name: String, mode: CsvSinkMode, format: LineFormat, header: bool) -> LineRenderer {
        LineRenderer {
            name,
            mode,
            format,
            json_schema: None,
            header,
        }
    }

    /// Bind the output schema, returning the header line to write (CSV
    /// with headers enabled only).
    fn bind(&mut self, schema: SchemaRef) -> Result<Option<String>> {
        let header = if self.header && matches!(self.format, LineFormat::Csv) {
            let mut names: Vec<String> = schema
                .names()
                .into_iter()
                .map(text::escape_csv_field)
                .collect();
            if self.mode == CsvSinkMode::Changelog {
                names.extend(META_NAMES.iter().map(|n| n.to_string()));
            }
            Some(names.join(","))
        } else {
            None
        };
        let mut fields = schema.fields().to_vec();
        if self.mode == CsvSinkMode::Changelog {
            fields.push(onesql_types::Field::new(
                META_NAMES[0],
                onesql_types::DataType::Bool,
            ));
            fields.push(onesql_types::Field::new(
                META_NAMES[1],
                onesql_types::DataType::Timestamp,
            ));
            fields.push(onesql_types::Field::new(
                META_NAMES[2],
                onesql_types::DataType::Int,
            ));
        }
        self.json_schema = Some(Schema::new(fields));
        Ok(header)
    }

    fn render(&self, sr: &StreamRow) -> Result<String> {
        if self.mode == CsvSinkMode::Appends && sr.undo {
            return Err(Error::exec(format!(
                "{}: retraction reached an appends-mode sink; use \
                 CsvSinkMode::Changelog or a watermark-gated query",
                self.name
            )));
        }
        Ok(match (&self.format, &self.mode) {
            (LineFormat::Csv, CsvSinkMode::Appends) => text::row_to_csv(&sr.row),
            (LineFormat::Csv, CsvSinkMode::Changelog) => {
                let mut fields: Vec<String> = sr
                    .row
                    .values()
                    .iter()
                    .map(|v| text::escape_csv_field(&text::format_value(v)))
                    .collect();
                // `true`/`false` (not the paper's "undo" rendering, which
                // ChangelogSink provides) so the column parses back as the
                // Bool the meta schema declares.
                fields.push(sr.undo.to_string());
                fields.push(sr.ptime.to_clock_string());
                fields.push(sr.ver.to_string());
                fields.join(",")
            }
            (LineFormat::JsonLines, mode) => {
                let schema = self
                    .json_schema
                    .as_ref()
                    .ok_or_else(|| Error::exec(format!("{}: sink was never bound", self.name)))?;
                let row = if *mode == CsvSinkMode::Changelog {
                    sr.row.with_appended(&[
                        Value::Bool(sr.undo),
                        Value::Ts(sr.ptime),
                        Value::Int(sr.ver as i64),
                    ])
                } else {
                    sr.row.clone()
                };
                json::row_to_json(&row, schema)
            }
        })
    }
}

struct TextFileSink {
    renderer: LineRenderer,
    writer: BufWriter<File>,
}

impl TextFileSink {
    fn create(
        path: impl AsRef<Path>,
        mode: CsvSinkMode,
        format: LineFormat,
        header: bool,
    ) -> Result<TextFileSink> {
        let path = path.as_ref();
        let file = File::create(path)
            .map_err(|e| Error::exec(format!("cannot create '{}': {e}", path.display())))?;
        Ok(TextFileSink {
            renderer: LineRenderer::new(format!("file:{}", path.display()), mode, format, header),
            writer: BufWriter::new(file),
        })
    }

    fn name(&self) -> &str {
        &self.renderer.name
    }

    fn bind(&mut self, schema: SchemaRef) -> Result<()> {
        if let Some(header) = self.renderer.bind(schema)? {
            writeln!(self.writer, "{header}")
                .map_err(|e| Error::exec(format!("{}: write error: {e}", self.renderer.name)))?;
        }
        Ok(())
    }

    fn write(&mut self, rows: &[StreamRow]) -> Result<()> {
        for sr in rows {
            let line = self.renderer.render(sr)?;
            writeln!(self.writer, "{line}")
                .map_err(|e| Error::exec(format!("{}: write error: {e}", self.renderer.name)))?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.writer
            .flush()
            .map_err(|e| Error::exec(format!("{}: flush error: {e}", self.renderer.name)))
    }
}

/// Writes output rows to a CSV file.
pub struct CsvFileSink(TextFileSink);

impl CsvFileSink {
    /// Create (truncate) `path`; a header line is written at bind time.
    pub fn new(path: impl AsRef<Path>, mode: CsvSinkMode) -> Result<CsvFileSink> {
        Ok(CsvFileSink(TextFileSink::create(
            path,
            mode,
            LineFormat::Csv,
            true,
        )?))
    }

    /// Create without a header line (so a `CsvFileSource` with
    /// `has_header: false` reads the output back directly).
    pub fn headerless(path: impl AsRef<Path>, mode: CsvSinkMode) -> Result<CsvFileSink> {
        Ok(CsvFileSink(TextFileSink::create(
            path,
            mode,
            LineFormat::Csv,
            false,
        )?))
    }
}

impl Sink for CsvFileSink {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn bind(&mut self, schema: SchemaRef) -> Result<()> {
        self.0.bind(schema)
    }
    fn write(&mut self, rows: &[StreamRow]) -> Result<()> {
        self.0.write(rows)
    }
    fn flush(&mut self) -> Result<()> {
        self.0.flush()
    }
}

/// Writes output rows as JSON-lines.
pub struct JsonLinesSink(TextFileSink);

impl JsonLinesSink {
    /// Create (truncate) `path`.
    pub fn new(path: impl AsRef<Path>, mode: CsvSinkMode) -> Result<JsonLinesSink> {
        Ok(JsonLinesSink(TextFileSink::create(
            path,
            mode,
            LineFormat::JsonLines,
            false,
        )?))
    }
}

impl Sink for JsonLinesSink {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn bind(&mut self, schema: SchemaRef) -> Result<()> {
        self.0.bind(schema)
    }
    fn write(&mut self, rows: &[StreamRow]) -> Result<()> {
        self.0.write(rows)
    }
    fn flush(&mut self) -> Result<()> {
        self.0.flush()
    }
}

// ---------------------------------------------------------------------------
// Transactional (two-phase) file sink
// ---------------------------------------------------------------------------

/// Magic opening a transactional sink's staging sidecar.
const TXN_MAGIC: [u8; 4] = *b"OSQT";

/// Staged `(epoch, length)` entries the sidecar keeps after a commit.
/// Must be at least the checkpoint store's retention (`SET
/// checkpoint_retain`, default 3) for every retained epoch to stay
/// restorable; 64 leaves a wide margin while bounding sidecar growth.
const TXN_RETAIN: usize = 64;

/// Lifecycle of a transactional sink instance.
enum TxnState {
    /// Built and bound, fate undecided: the first `write` starts a fresh
    /// output file; an `on_restore` recovers the previous incarnation's.
    Pending,
    /// Output file open, appending.
    Active,
    /// Pipeline finished; output is final and the sidecar is gone.
    Finished,
}

/// A two-phase file sink for exactly-once *sink files*, not just
/// changelogs: rows append to the destination file as usual, but every
/// checkpoint barrier durably stages the association `(epoch, committed
/// byte length)` in a `<path>.txn` sidecar **before** the pipeline
/// checkpoint itself is persisted, and `ack_checkpoint` commits it.
/// Restoring epoch E in a fresh process truncates the file back to E's
/// recorded length — discarding exactly the uncommitted staging the
/// replay will regenerate — so a pipeline killed at any point and
/// restored produces a destination file *byte-identical* to an
/// uninterrupted run. A normal finish removes the sidecar, leaving the
/// same final artifacts either way.
///
/// The sidecar is framed like every durable-checkpoint file (magic +
/// version + length + CRC, atomic tmp-rename; see
/// `onesql_core::durable`), so a corrupt or truncated sidecar is a typed
/// error, never silent duplication.
pub struct TxnFileSink {
    renderer: LineRenderer,
    path: std::path::PathBuf,
    sidecar: std::path::PathBuf,
    header: Option<String>,
    state: TxnState,
    /// `(epoch, committed byte length)` per staged checkpoint, ascending.
    epochs: Vec<(u64, u64)>,
    /// Highest epoch whose durability was acknowledged (phase two).
    committed: u64,
    writer: Option<BufWriter<File>>,
}

impl TxnFileSink {
    /// A transactional sink writing `path` (sidecar `path.txn`). No file
    /// is touched until the first write (fresh start) or `on_restore`
    /// (recovery) decides this instance's fate.
    pub fn new(path: impl AsRef<Path>, mode: CsvSinkMode, header: bool) -> TxnFileSink {
        TxnFileSink::with_format(path, mode, LineFormat::Csv, header)
    }

    /// A transactional JSON-lines sink.
    pub fn json_lines(path: impl AsRef<Path>, mode: CsvSinkMode) -> TxnFileSink {
        TxnFileSink::with_format(path, mode, LineFormat::JsonLines, false)
    }

    fn with_format(
        path: impl AsRef<Path>,
        mode: CsvSinkMode,
        format: LineFormat,
        header: bool,
    ) -> TxnFileSink {
        let path = path.as_ref().to_path_buf();
        let mut sidecar_name = path.file_name().unwrap_or_default().to_os_string();
        sidecar_name.push(".txn");
        let sidecar = path.with_file_name(sidecar_name);
        TxnFileSink {
            renderer: LineRenderer::new(
                format!("txnfile:{}", path.display()),
                mode,
                format,
                header,
            ),
            path,
            sidecar,
            header: None,
            state: TxnState::Pending,
            epochs: Vec::new(),
            committed: 0,
            writer: None,
        }
    }

    fn err(&self, msg: impl std::fmt::Display) -> onesql_types::Error {
        Error::exec(format!("{}: {msg}", self.renderer.name))
    }

    /// Persist the sidecar atomically: `committed`, then the staged
    /// `(epoch, length)` pairs.
    fn write_sidecar(&self) -> Result<()> {
        let mut payload = Vec::with_capacity(16 + self.epochs.len() * 16);
        payload.extend_from_slice(&self.committed.to_le_bytes());
        payload.extend_from_slice(&(self.epochs.len() as u64).to_le_bytes());
        for &(epoch, len) in &self.epochs {
            payload.extend_from_slice(&epoch.to_le_bytes());
            payload.extend_from_slice(&len.to_le_bytes());
        }
        onesql_core::durable::write_atomic(&self.sidecar, TXN_MAGIC, &payload)
    }

    fn read_sidecar(&self) -> Result<(u64, Vec<(u64, u64)>)> {
        let payload = onesql_core::durable::read_verified(&self.sidecar, TXN_MAGIC)?;
        let word = |i: usize| -> Result<u64> {
            let bytes = payload.get(i * 8..i * 8 + 8).ok_or_else(|| {
                self.err(format!(
                    "sidecar '{}' payload is short",
                    self.sidecar.display()
                ))
            })?;
            let mut arr = [0u8; 8];
            arr.copy_from_slice(bytes);
            Ok(u64::from_le_bytes(arr))
        };
        let committed = word(0)?;
        let count = word(1)?;
        let mut epochs = Vec::with_capacity(usize::try_from(count).unwrap_or(0).min(1024));
        for i in 0..count {
            let base = 2 + (i as usize) * 2;
            epochs.push((word(base)?, word(base + 1)?));
        }
        Ok((committed, epochs))
    }

    /// Fresh start: create (truncate) the destination, write the header,
    /// record the txn baseline. Overwrites any stale sidecar from an
    /// abandoned earlier run — the same truncate-and-redo a
    /// non-transactional sink performs on its output file.
    fn start_fresh(&mut self) -> Result<()> {
        let file = File::create(&self.path)
            .map_err(|e| self.err(format!("cannot create '{}': {e}", self.path.display())))?;
        let mut writer = BufWriter::new(file);
        if let Some(header) = &self.header {
            writeln!(writer, "{header}").map_err(|e| self.err(format!("write error: {e}")))?;
            writer
                .flush()
                .map_err(|e| self.err(format!("flush error: {e}")))?;
        }
        self.writer = Some(writer);
        self.epochs.clear();
        self.committed = 0;
        self.write_sidecar()?;
        self.state = TxnState::Active;
        Ok(())
    }

    fn active_writer(&mut self) -> Result<&mut BufWriter<File>> {
        match self.state {
            TxnState::Pending => self.start_fresh()?,
            TxnState::Active => {}
            TxnState::Finished => {
                return Err(self.err("write after the pipeline finished"));
            }
        }
        self.writer
            .as_mut()
            .ok_or_else(|| Error::exec("transactional sink is active without an open writer"))
    }

    /// Flush buffered lines and return the file's current byte length.
    fn flushed_len(&mut self) -> Result<u64> {
        let name = self.renderer.name.clone();
        let writer = self.active_writer()?;
        writer
            .flush()
            .map_err(|e| Error::exec(format!("{name}: flush error: {e}")))?;
        let meta = writer
            .get_ref()
            .metadata()
            .map_err(|e| Error::exec(format!("{name}: cannot stat: {e}")))?;
        Ok(meta.len())
    }
}

impl Sink for TxnFileSink {
    fn name(&self) -> &str {
        &self.renderer.name
    }

    fn bind(&mut self, schema: SchemaRef) -> Result<()> {
        self.header = self.renderer.bind(schema)?;
        Ok(())
    }

    fn write(&mut self, rows: &[StreamRow]) -> Result<()> {
        for sr in rows {
            let line = self.renderer.render(sr)?;
            let name = self.renderer.name.clone();
            writeln!(self.active_writer()?, "{line}")
                .map_err(|e| Error::exec(format!("{name}: write error: {e}")))?;
        }
        Ok(())
    }

    fn on_checkpoint(&mut self, epoch: u64) -> Result<()> {
        // Phase one, durable *before* the checkpoint itself persists:
        // sync the data, then atomically stage (epoch, length). Whichever
        // epochs the store ends up retaining, their boundaries exist.
        let len = self.flushed_len()?;
        let writer = self
            .writer
            .as_mut()
            .ok_or_else(|| Error::exec("transactional sink lost its writer after flush"))?;
        writer
            .get_ref()
            .sync_all()
            .map_err(|e| self.err(format!("sync error: {e}")))?;
        if let Some(&(last, _)) = self.epochs.last() {
            if epoch <= last {
                return Err(self.err(format!(
                    "checkpoint epoch {epoch} does not advance past staged epoch {last}"
                )));
            }
        }
        self.epochs.push((epoch, len));
        self.write_sidecar()
    }

    fn commit_checkpoint(&mut self, epoch: u64) -> Result<()> {
        if !self.epochs.iter().any(|&(e, _)| e == epoch) {
            return Err(self.err(format!("cannot commit epoch {epoch}: it was never staged")));
        }
        if epoch > self.committed {
            self.committed = epoch;
            // Release staging for epochs no checkpoint store can still
            // restore: keep the newest TXN_RETAIN entries (a generous
            // multiple of any sane `checkpoint_retain`), so the sidecar
            // stays O(1) per checkpoint instead of growing forever.
            if self.epochs.len() > TXN_RETAIN {
                let drop = self.epochs.len() - TXN_RETAIN;
                self.epochs.drain(..drop);
            }
            self.write_sidecar()?;
        }
        Ok(())
    }

    fn on_restore(&mut self, epoch: u64) -> Result<()> {
        if !matches!(self.state, TxnState::Pending) {
            return Err(self.err("restore requires a freshly built sink"));
        }
        if !self.sidecar.exists() {
            return Err(self.err(format!(
                "no transactional staging state at '{}'; was the previous run's \
                 sink transactional and checkpointed?",
                self.sidecar.display()
            )));
        }
        let (_, epochs) = self.read_sidecar()?;
        let Some(&(_, len)) = epochs.iter().find(|&&(e, _)| e == epoch) else {
            return Err(self.err(format!(
                "epoch {epoch} was never staged here (staged epochs: {:?})",
                epochs.iter().map(|&(e, _)| e).collect::<Vec<_>>()
            )));
        };
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(|e| self.err(format!("cannot open '{}': {e}", self.path.display())))?;
        let actual = file
            .metadata()
            .map_err(|e| self.err(format!("cannot stat: {e}")))?
            .len();
        if actual < len {
            return Err(self.err(format!(
                "'{}' holds {actual} bytes but epoch {epoch} committed {len}; \
                 committed output is missing",
                self.path.display()
            )));
        }
        // Truncate the uncommitted staging; the replay regenerates it.
        file.set_len(len)
            .map_err(|e| self.err(format!("cannot truncate: {e}")))?;
        let mut file = file;
        std::io::Seek::seek(&mut file, std::io::SeekFrom::End(0))
            .map_err(|e| self.err(format!("cannot seek: {e}")))?;
        self.writer = Some(BufWriter::new(file));
        self.epochs = epochs.into_iter().filter(|&(e, _)| e <= epoch).collect();
        self.committed = epoch;
        self.write_sidecar()?;
        self.state = TxnState::Active;
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        // The pipeline finished: make the output final. An empty run
        // still materializes the (header-only) file, exactly like the
        // non-transactional sink; the sidecar is removed because there is
        // no staging left to recover. The driver flushes sinks *before*
        // acking final source offsets, so if a later finish step fails,
        // the output here is already complete and durable — a subsequent
        // restore attempt errors loudly on the missing sidecar rather
        // than duplicating rows into a finished file.
        self.flushed_len()?;
        let writer = self
            .writer
            .as_mut()
            .ok_or_else(|| Error::exec("transactional sink lost its writer after flush"))?;
        writer
            .get_ref()
            .sync_all()
            .map_err(|e| self.err(format!("sync error: {e}")))?;
        std::fs::remove_file(&self.sidecar)
            .map_err(|e| self.err(format!("cannot remove sidecar: {e}")))?;
        self.state = TxnState::Finished;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesql_core::StreamBuilder;
    use onesql_types::{row, DataType};
    use std::sync::Arc;

    fn schema() -> SchemaRef {
        Arc::new(
            StreamBuilder::new()
                .event_time_column("bidtime")
                .column("price", DataType::Int)
                .column("item", DataType::String)
                .build(),
        )
    }

    fn scratch_file(name: &str, content: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("onesql_file_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path
    }

    #[test]
    fn quoted_field_spanning_lines_parses_as_one_record() {
        let path = scratch_file("multiline.csv", "8:07,2,\"a\nb\"\n8:08,3,c\n");
        let mut source =
            CsvFileSource::new(&path, "Bid", schema(), FileSourceConfig::default()).unwrap();
        let batch = source.poll_batch(16).unwrap();
        assert_eq!(batch.events.len(), 2);
        assert_eq!(batch.events[0].change.row, row!(Ts::hm(8, 7), 2i64, "a\nb"));
        assert_eq!(batch.events[1].change.row, row!(Ts::hm(8, 8), 3i64, "c"));
    }

    #[test]
    fn unterminated_quote_at_eof_errors_with_line() {
        let path = scratch_file("unterminated.csv", "8:07,2,\"open\n");
        let mut source =
            CsvFileSource::new(&path, "Bid", schema(), FileSourceConfig::default()).unwrap();
        let err = source.poll_batch(16).unwrap_err().to_string();
        assert!(err.contains("unterminated"), "{err}");
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn watermark_admits_duplicate_timestamps() {
        // Two rows share the max event time; the watermark must stay
        // strictly below it so the second row is not late.
        let path = scratch_file("dups.csv", "8:07,1,a\n8:07,2,b\n");
        let mut source =
            CsvFileSource::new(&path, "Bid", schema(), FileSourceConfig::default()).unwrap();
        let batch = source.poll_batch(16).unwrap();
        let wm = batch.watermark.unwrap();
        assert!(wm < Ts::hm(8, 7), "watermark {wm} would close ts 8:07");
        assert_eq!(wm, Ts::hm(8, 7) - Duration(1));
    }

    fn stream_row(v: i64) -> StreamRow {
        StreamRow {
            row: row!(v),
            undo: false,
            ptime: Ts(v),
            ver: 0,
        }
    }

    fn out_schema() -> SchemaRef {
        Arc::new(Schema::new(vec![onesql_types::Field::new(
            "v",
            DataType::Int,
        )]))
    }

    #[test]
    fn txn_sink_stages_commits_and_truncates_on_restore() {
        let dir = std::env::temp_dir().join("onesql_txn_sink_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("txn-{}.csv", std::process::id()));
        let sidecar = dir.join(format!("txn-{}.csv.txn", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&sidecar);

        // First incarnation: two rows, checkpoint epoch 1, two more rows
        // (uncommitted staging), then "crash" (drop without flush).
        let mut sink = TxnFileSink::new(&path, CsvSinkMode::Appends, false);
        sink.bind(out_schema()).unwrap();
        sink.write(&[stream_row(1), stream_row(2)]).unwrap();
        sink.on_checkpoint(1).unwrap();
        sink.commit_checkpoint(1).unwrap();
        sink.write(&[stream_row(3), stream_row(4)]).unwrap();
        // Stage epoch 2 so the bytes are on disk, but never "persist" it.
        sink.on_checkpoint(2).unwrap();
        drop(sink);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "1\n2\n3\n4\n");

        // Restore epoch 1 in a fresh instance: rows 3 and 4 are staging
        // beyond it and must vanish; the replay re-writes them once.
        let mut sink = TxnFileSink::new(&path, CsvSinkMode::Appends, false);
        sink.bind(out_schema()).unwrap();
        sink.on_restore(1).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "1\n2\n");
        sink.write(&[stream_row(3), stream_row(4)]).unwrap();
        sink.flush().unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "1\n2\n3\n4\n");
        assert!(!sidecar.exists(), "finish removes the sidecar");

        // Terminal state refuses more writes.
        let err = sink.write(&[stream_row(9)]).unwrap_err().to_string();
        assert!(err.contains("finished"), "{err}");
    }

    #[test]
    fn txn_sink_restore_errors_are_typed() {
        let dir = std::env::temp_dir().join("onesql_txn_sink_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("txn-err-{}.csv", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(dir.join(format!("txn-err-{}.csv.txn", std::process::id())));

        // No sidecar at all.
        let mut sink = TxnFileSink::new(&path, CsvSinkMode::Appends, false);
        sink.bind(out_schema()).unwrap();
        let err = sink.on_restore(1).unwrap_err().to_string();
        assert!(err.contains("no transactional staging state"), "{err}");

        // Stage epoch 1, then ask for an epoch that was never staged.
        sink.write(&[stream_row(1)]).unwrap();
        sink.on_checkpoint(1).unwrap();
        let err = sink.commit_checkpoint(9).unwrap_err().to_string();
        assert!(err.contains("never staged"), "{err}");
        drop(sink);
        let mut sink = TxnFileSink::new(&path, CsvSinkMode::Appends, false);
        sink.bind(out_schema()).unwrap();
        let err = sink.on_restore(7).unwrap_err().to_string();
        assert!(err.contains("epoch 7 was never staged"), "{err}");

        // Committed bytes missing: the data file shrank below epoch 1's
        // recorded length.
        std::fs::write(&path, b"").unwrap();
        let mut sink = TxnFileSink::new(&path, CsvSinkMode::Appends, false);
        sink.bind(out_schema()).unwrap();
        let err = sink.on_restore(1).unwrap_err().to_string();
        assert!(err.contains("committed output is missing"), "{err}");
    }

    #[test]
    fn columnar_poll_matches_row_poll() {
        let content = "8:07,2,a\n8:05,3,\"b,c\"\n\n8:09,,d\n";
        let path = scratch_file("columnar.csv", content);
        let mut rows =
            CsvFileSource::new(&path, "Bid", schema(), FileSourceConfig::default()).unwrap();
        let path = scratch_file("columnar2.csv", content);
        let mut cols =
            CsvFileSource::new(&path, "Bid", schema(), FileSourceConfig::default()).unwrap();

        let rb = rows.poll_batch(16).unwrap();
        let cb = cols.poll_columns(16).unwrap().expect("CSV is columnar");
        assert_eq!(cb.columns.len(), rb.events.len());
        assert_eq!(cb.watermark, rb.watermark);
        assert_eq!(cb.status, rb.status);
        let mut clock = Ts::MIN;
        for (i, ev) in rb.events.iter().enumerate() {
            // The columnar lane pre-applies the driver's monotone clamp.
            clock = clock.max(ev.ptime);
            assert_eq!(cb.columns.ptime(i), clock, "row {i}");
            assert_eq!(cb.columns.change(i), ev.change, "row {i}");
        }
        // Numeric and timestamp fields land in typed, unboxed columns.
        assert_eq!(
            cb.columns.columns()[0].uniform_type(),
            Some(DataType::Timestamp)
        );
        assert_eq!(cb.columns.columns()[1].uniform_type(), Some(DataType::Int));
        assert!(cb.columns.columns()[1].has_nulls());

        // Exhausted sources agree too.
        let rb = rows.poll_batch(16).unwrap();
        let cb = cols.poll_columns(16).unwrap().unwrap();
        assert_eq!(rb.status, SourceStatus::Finished);
        assert_eq!(cb.status, SourceStatus::Finished);
        assert!(cb.columns.is_empty());
    }

    #[test]
    fn columnar_poll_errors_match_row_poll() {
        for content in [
            "8:07,2,a\n8:08,notanumber,b\n",
            "8:07,2\n",
            "nots,2,a\n",
            ",2,late-null-event-time\n",
        ] {
            let path = scratch_file("columnar_err_rows.csv", content);
            let mut rows =
                CsvFileSource::new(&path, "Bid", schema(), FileSourceConfig::default()).unwrap();
            let path = scratch_file("columnar_err_cols.csv", content);
            let mut cols =
                CsvFileSource::new(&path, "Bid", schema(), FileSourceConfig::default()).unwrap();
            let row_err = rows.poll_batch(16).unwrap_err().to_string();
            let col_err = cols.poll_columns(16).unwrap_err().to_string();
            // Identical up to the differing file names.
            assert_eq!(
                row_err.replace("columnar_err_rows", "X"),
                col_err.replace("columnar_err_cols", "X"),
                "for {content:?}"
            );
        }
    }

    #[test]
    fn json_lines_source_has_no_columnar_path() {
        let path = scratch_file("rows.jsonl", "");
        let mut source =
            JsonLinesSource::new(&path, "Bid", schema(), FileSourceConfig::default()).unwrap();
        assert!(source.poll_columns(16).unwrap().is_none());
    }

    #[test]
    fn malformed_field_errors_name_file_and_line() {
        let path = scratch_file("bad.csv", "8:07,2,a\n8:08,notanumber,b\n");
        let mut source =
            CsvFileSource::new(&path, "Bid", schema(), FileSourceConfig::default()).unwrap();
        let err = source.poll_batch(16).unwrap_err().to_string();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("notanumber"), "{err}");
    }
}
